package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"heap/internal/ckks"
	"heap/internal/cluster"
	"heap/internal/core"
	"heap/internal/obs"
	"heap/internal/ring"
	"heap/internal/rlwe"
	"heap/internal/serve"
)

// svcBenchResult is the JSON record runBenchServe writes: the first
// service-level numbers — job latency percentiles and throughput through a
// full in-process heapd stack (frame protocol over pipes, registry, admission,
// coalescer, key-major executor) — plus the coalescing counters that prove
// cross-connection batching actually happened.
type svcBenchResult struct {
	LogN        int     `json:"logN"`
	Limbs       int     `json:"q_limbs"`
	NT          int     `json:"n_t"`
	Tile        int     `json:"tile"`
	Tenants     int     `json:"tenants"`
	Conns       int     `json:"conns_per_tenant"`
	JobsPerConn int     `json:"jobs_per_conn"`
	RotPerJob   int     `json:"rot_per_job"`
	WindowMs    float64 `json:"window_ms"`
	Cores       int     `json:"cores"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	RotPerSec   float64 `json:"rot_per_sec"`
	Coalesced   int64   `json:"coalesced_jobs"`
	Batches     int64   `json:"serve_batches"`
	BRKBytes    int64   `json:"brk_bytes_streamed"`
}

// benchServeNode builds one party at the small ring the cluster tests use
// (N=64, three 30-bit limbs): cheap enough for a CI gate while still running
// the real kernels end to end.
func benchServeNode(seed uint64, cold bool) (*core.Bootstrapper, error) {
	logN := 6
	q := ring.GenerateNTTPrimes(30, logN, 3)
	p := ring.GenerateNTTPrimesUp(31, logN, 2)
	params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<28), 1<<(logN-1))
	kg := rlwe.NewKeyGenerator(params.Parameters, seed)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cfg := core.DefaultConfig()
	cfg.NT = 0
	cfg.Workers = 1
	cfg.ColdStart = cold
	return core.NewBootstrapper(params, kg, sk, cfg)
}

// runBenchServe drives an in-process bootstrap service: a key-cold server,
// `tenants` tenants each holding their own blind-rotate key, `conns`
// concurrent connections per tenant, `jobs` sequential jobs per connection of
// `batch` rotations each. Latency is measured per job at the client;
// throughput over the whole run.
func runBenchServe(path string, tenants, conns, jobs, batch int, window time.Duration) error {
	if tenants <= 0 || conns <= 0 || jobs <= 0 || batch <= 0 {
		return fmt.Errorf("heapbench: -svctenants/-svcconns/-svcjobs/-svcbatch must be positive")
	}
	boot, err := benchServeNode(200, true)
	if err != nil {
		return err
	}
	const tile = 8
	srv := serve.NewServer(boot, serve.Config{Window: window, Executors: 1, Tile: tile, Workers: 1})
	l := cluster.NewPipeListener()
	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = srv.Serve(l)
	}()

	dim := cluster.LWEDim(boot)
	twoN := uint64(2 * boot.Params.N())
	fmt.Printf("service bench: %d tenant(s) x %d conn(s) x %d job(s) x %d rot (N=%d, window %v)\n",
		tenants, conns, jobs, batch, boot.Params.N(), window)

	clients := make([][]*serve.Client, tenants)
	lwes := make([][]*rlwe.LWECiphertext, tenants)
	for t := 0; t < tenants; t++ {
		tboot, err := benchServeNode(300+uint64(t), false)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("tenant-%d", t)
		clients[t] = make([]*serve.Client, conns)
		for c := 0; c < conns; c++ {
			conn, err := l.Dial()
			if err != nil {
				return err
			}
			cl, err := serve.NewClient(conn, tboot, name, nil)
			if err != nil {
				return err
			}
			clients[t][c] = cl
		}
		if err := clients[t][0].UploadKey(0, 0); err != nil {
			return fmt.Errorf("heapbench: %s key upload: %w", name, err)
		}
		// Dense synthetic LWEs, seeded per tenant: the rotations are real
		// work under the tenant's real key; only the plaintext is noise.
		s := ring.NewSampler(400 + uint64(t))
		lwes[t] = make([]*rlwe.LWECiphertext, batch)
		for j := range lwes[t] {
			lwe := &rlwe.LWECiphertext{A: make([]uint64, dim), Q: twoN}
			for i := range lwe.A {
				lwe.A[i] = 1 + s.UniformMod(twoN-1)
			}
			lwe.B = s.UniformMod(twoN)
			lwes[t][j] = lwe
		}
		// Warm the registry pin and executor path before timing.
		if _, err := clients[t][0].Rotate(lwes[t], 0); err != nil {
			return fmt.Errorf("heapbench: %s warm-up job: %w", name, err)
		}
	}

	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		lats  []time.Duration
		first error
	)
	start := time.Now()
	for t := 0; t < tenants; t++ {
		for c := 0; c < conns; c++ {
			wg.Add(1)
			go func(cl *serve.Client, batch []*rlwe.LWECiphertext) {
				defer wg.Done()
				local := make([]time.Duration, 0, jobs)
				for j := 0; j < jobs; j++ {
					t0 := time.Now()
					if _, err := cl.Rotate(batch, 0); err != nil {
						mu.Lock()
						if first == nil {
							first = err
						}
						mu.Unlock()
						return
					}
					local = append(local, time.Since(t0))
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}(clients[t][c], lwes[t])
		}
	}
	wg.Wait()
	wall := time.Since(start)
	if first != nil {
		return first
	}

	for t := range clients {
		for _, cl := range clients[t] {
			_ = cl.Close()
		}
	}
	_ = l.Close()
	<-served
	srv.Close()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	n := len(lats)
	met := srv.Metrics()
	res := svcBenchResult{
		LogN: 6, Limbs: 3, NT: dim, Tile: tile,
		Tenants: tenants, Conns: conns, JobsPerConn: jobs, RotPerJob: batch,
		WindowMs:   float64(window.Microseconds()) / 1e3,
		Cores:      runtime.NumCPU(),
		P50Ms:      float64(lats[n/2].Microseconds()) / 1e3,
		P99Ms:      float64(lats[(n*99+99)/100-1].Microseconds()) / 1e3,
		JobsPerSec: float64(n) / wall.Seconds(),
		RotPerSec:  float64(n*batch) / wall.Seconds(),
		Coalesced:  int64(met.Counter(obs.CounterJobsCoalesced)),
		Batches:    int64(met.Counter(obs.CounterServeBatches)),
		BRKBytes:   int64(met.Counter(obs.CounterBRKBytesStreamed)),
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("%d jobs in %.1f ms: p50 %.2f ms, p99 %.2f ms, %.0f jobs/s (%.0f rot/s), %d coalesced across %d batches -> %s\n",
		n, float64(wall.Microseconds())/1e3, res.P50Ms, res.P99Ms, res.JobsPerSec, res.RotPerSec, res.Coalesced, res.Batches, path)
	return nil
}
