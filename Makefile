GO ?= go

.PHONY: build test check vet race chaos fuzz fuzz-smoke fmt bench-smoke cover benchdiff benchdiff-soft bench-kernels bench-kernels-soft serve-smoke load-smoke purego

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Pure-Go lane: the build that ships to non-amd64 targets (and amd64 with
# the vector kernels compiled out) must stay green on its own — the scalar
# loops are the only code path there, and `go vet` covers the assembly
# argument layouts via asmdecl on the default lane.
purego:
	$(GO) build -tags purego ./...
	$(GO) test -tags purego ./...

# Fault-injection suite under the race detector: link cuts, stalls, corrupt
# frames, join/leave churn, kill-mid-key-upload resume, and hedged dispatch.
# Every scenario checks the distributed result bit-exact against a local
# bootstrap and asserts no goroutine leaks.
chaos:
	$(GO) test -race -count=1 ./internal/cluster/ -run \
		'TestKill|TestAllSecondariesDead|TestDelayedPeer|TestRetryBackoff|TestReconnect|TestCorruptLink|TestShortReads|TestContextCancellation|TestChaosMatrix|TestElastic|TestGracefulLeave|TestStalledNode|TestProbeMisses'

# Seed-corpus smoke over every fuzz target (plain `go test` runs each
# target's f.Add seeds and committed testdata/fuzz corpora without fuzzing).
fuzz-smoke:
	$(GO) test -count=1 -run='^Fuzz' ./internal/cluster/ ./internal/rlwe/ ./internal/ring/

# Allocation smoke: a short -benchmem pass over the hot kernels. The hard
# 0 allocs/op locks live in the AllocsPerRun tests (TestExternalProductInto
# ZeroAllocs, TestBlindRotateIntoZeroAllocs, TestNTTZeroAllocs); this tier
# surfaces ns/op and B/op drift on the same kernels so allocation or
# throughput regressions fail fast in review.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkKernel' -benchmem -benchtime=1x .
	$(GO) test -run='^$$' -bench='BenchmarkRepack|BenchmarkFinish|BenchmarkBootstrapEndToEnd' -benchmem -benchtime=1x .
	$(GO) test -run='^$$' -bench='BenchmarkBlindRotateBatch' -benchmem -benchtime=1x .
	$(GO) test -run='TestExternalProductIntoZeroAllocs' ./internal/rlwe/
	$(GO) test -run='TestBlindRotateIntoZeroAllocs|TestBlindRotateTileZeroAllocs|TestCMuxIntoZeroAllocs' ./internal/tfhe/
	$(GO) test -run='TestNTTZeroAllocs' ./internal/ring/
	$(GO) test -run='TestAutomorphismIntoZeroAllocs|TestMergeLevelZeroAllocs|TestTraceZeroAllocs' ./internal/rlwe/

# Performance-trajectory gate: re-measure the key-major blind rotation at a
# reduced batch size (the gated metric is per-rotation, so it compares against
# the committed full-size BENCH_blindrotate.json) and fail on a >10%
# regression. `check` runs it as a soft gate — wall-clock noise on shared CI
# hosts should warn, not block a merge; run `make benchdiff` directly for the
# hard verdict.
benchdiff:
	$(GO) run ./cmd/heapbench -benchjson /tmp/BENCH_blindrotate.json -brcount 32 -brruns 2
	$(GO) run ./cmd/benchdiff BENCH_blindrotate.json /tmp/BENCH_blindrotate.json
	$(GO) run ./cmd/heapbench -benchmode serve -benchjson /tmp/BENCH_service.json
	$(GO) run ./cmd/benchdiff -metric p99_ms -max-regress 75 BENCH_service.json /tmp/BENCH_service.json
	$(GO) run ./cmd/heapbench -benchmode load -benchjson /tmp/BENCH_load.json -ldjobs 24 -ldworkers 1,2 -ldrates 200 -ldpatterns uniform,hotkey
	$(GO) run ./cmd/benchdiff -metric closed_us_per_job -max-regress 75 BENCH_load.json /tmp/BENCH_load.json

benchdiff-soft:
	@$(MAKE) benchdiff || echo "WARNING: benchdiff regression vs committed baseline (soft gate; not failing check)"

# Modular-kernel trajectory gate: re-measure the per-prime kernel ablation
# (scalar reduction chains, Shoup- vs Montgomery-twiddle NTT, fixed-shift vs
# generic vector MAC) and compare the two vector-level figures against the
# committed BENCH_kernels.json. Thresholds are generous because scalar-chain
# and microsecond-scale timings are noisy on shared hosts; `check` runs the
# soft wrapper for the same reason benchdiff is soft there.
bench-kernels:
	$(GO) run ./cmd/heapbench -benchjson /tmp/BENCH_kernels.json -kruns 2
	$(GO) run ./cmd/benchdiff -metric ntt_shoup_us -max-regress 40 BENCH_kernels.json /tmp/BENCH_kernels.json
	$(GO) run ./cmd/benchdiff -metric mac_fixed_us -max-regress 40 BENCH_kernels.json /tmp/BENCH_kernels.json
	$(GO) run ./cmd/benchdiff -metric ntt_avx2_us -max-regress 40 BENCH_kernels.json /tmp/BENCH_kernels.json
	$(GO) run ./cmd/benchdiff -metric intt_avx2_us -max-regress 40 BENCH_kernels.json /tmp/BENCH_kernels.json
	$(GO) run ./cmd/benchdiff -metric mac_avx2_us -max-regress 40 BENCH_kernels.json /tmp/BENCH_kernels.json

bench-kernels-soft:
	@$(MAKE) bench-kernels || echo "WARNING: kernel ablation regression vs committed BENCH_kernels.json (soft gate; not failing check)"

# Service-layer smoke: build the daemon, then run the in-process acceptance
# test under the race detector — two tenants on two connections each, with
# same-key coalescing asserted via the jobs_coalesced counter and bit-exact
# results against local rotations.
serve-smoke:
	$(GO) build ./cmd/heapd
	$(GO) test -race -count=1 -run 'TestServiceCoalescesAcrossConnections|TestServiceAdmissionIsolatesTenants' ./internal/serve/

# Load-harness smoke: the overload suite under the race detector (bounded
# queue, non-fatal rejections, p99 within budget, zero ledger gap, virtual-
# clock determinism), then a tiny heapbench load matrix driven end to end
# through the real stack — proof that `-benchmode load` can regenerate the
# committed BENCH_load.json shape on any host in a few seconds.
load-smoke:
	$(GO) test -race -count=1 -run 'TestClosedLoopServesEverything|TestOverloadBoundedQueueWithinBudget|TestOverloadVirtualClockDeterministic' ./internal/load/
	$(GO) run ./cmd/heapbench -benchmode load -benchjson /tmp/BENCH_load_smoke.json -ldjobs 12 -ldworkers 1 -ldrates 200 -ldpatterns uniform,hotkey
	$(GO) run ./cmd/benchdiff -metric closed_us_per_job -max-regress 150 BENCH_load.json /tmp/BENCH_load_smoke.json

# Per-package statement-coverage gate over the packages that carry the
# correctness burden. Floors sit ~2 points under measured head (core 90.8%,
# cluster 80.9%, rlwe 89.7%, serve 82.4%, load 88.2%) so the gate trips on
# real coverage loss — a deleted test, an uncovered new subsystem — not on
# noise.
cover:
	@set -e; \
	for spec in internal/core:88 internal/cluster:78 internal/rlwe:87 internal/serve:80 internal/load:86; do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		pct=$$($(GO) test -cover ./$$pkg/ | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "FAIL: no coverage output for $$pkg"; exit 1; fi; \
		echo "coverage $$pkg: $$pct% (floor $$floor%)"; \
		if [ "$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN{print (p>=f)?1:0}')" != 1 ]; then \
			echo "FAIL: $$pkg coverage $$pct% below floor $$floor%"; exit 1; \
		fi; \
	done

# The merge gate: everything must build, vet clean, pass under the race
# detector (the cluster chaos tests plus the concurrent-automorphism and
# shared-key-switcher tests are the concurrency exercise), survive the
# fault-injection suite, run every fuzz seed corpus, keep the hot kernels
# allocation-free, prove the serving layer coalesces correctly and survives
# overload with bounded queues, hold the coverage floors, and hold the
# committed blind-rotate, service, and load-matrix trajectories (soft: warns
# on regression), including the modular-kernel ablation trajectory.
check: build vet purego race chaos fuzz-smoke bench-smoke serve-smoke load-smoke cover benchdiff-soft bench-kernels-soft

# Short fuzz smoke over the wire-facing decoders; the committed corpora in
# testdata/fuzz/ always run as part of plain `go test`.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzReadFrame -fuzztime=10s ./internal/cluster/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeBatch -fuzztime=10s ./internal/cluster/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeJoin -fuzztime=10s ./internal/cluster/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeKeyOffer -fuzztime=10s ./internal/cluster/
	$(GO) test -run=^$$ -fuzz=FuzzReadCiphertext -fuzztime=10s ./internal/rlwe/
	$(GO) test -run=^$$ -fuzz=FuzzReadLWECiphertext -fuzztime=10s ./internal/rlwe/
	$(GO) test -run=^$$ -fuzz=FuzzVectorVsScalarKernels -fuzztime=10s ./internal/ring/

fmt:
	gofmt -l .
