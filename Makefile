GO ?= go

.PHONY: build test check vet race fuzz fmt

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The merge gate: everything must build, vet clean, and pass under the race
# detector (the cluster chaos tests are the main concurrency exercise).
check: build vet race

# Short fuzz smoke over the wire-facing decoders; the committed corpora in
# testdata/fuzz/ always run as part of plain `go test`.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzReadFrame -fuzztime=10s ./internal/cluster/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeBatch -fuzztime=10s ./internal/cluster/
	$(GO) test -run=^$$ -fuzz=FuzzReadCiphertext -fuzztime=10s ./internal/rlwe/
	$(GO) test -run=^$$ -fuzz=FuzzReadLWECiphertext -fuzztime=10s ./internal/rlwe/

fmt:
	gofmt -l .
