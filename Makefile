GO ?= go

.PHONY: build test check vet race fuzz fmt bench-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Allocation smoke: a short -benchmem pass over the hot kernels. The hard
# 0 allocs/op locks live in the AllocsPerRun tests (TestExternalProductInto
# ZeroAllocs, TestBlindRotateIntoZeroAllocs, TestNTTZeroAllocs); this tier
# surfaces ns/op and B/op drift on the same kernels so allocation or
# throughput regressions fail fast in review.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkKernel' -benchmem -benchtime=1x .
	$(GO) test -run='^$$' -bench='BenchmarkRepack|BenchmarkFinish|BenchmarkBootstrapEndToEnd' -benchmem -benchtime=1x .
	$(GO) test -run='TestExternalProductIntoZeroAllocs' ./internal/rlwe/
	$(GO) test -run='TestBlindRotateIntoZeroAllocs' ./internal/tfhe/
	$(GO) test -run='TestNTTZeroAllocs' ./internal/ring/
	$(GO) test -run='TestAutomorphismIntoZeroAllocs|TestMergeLevelZeroAllocs' ./internal/rlwe/

# The merge gate: everything must build, vet clean, pass under the race
# detector (the cluster chaos tests plus the concurrent-automorphism and
# shared-key-switcher tests are the concurrency exercise), and keep the hot
# kernels allocation-free.
check: build vet race bench-smoke

# Short fuzz smoke over the wire-facing decoders; the committed corpora in
# testdata/fuzz/ always run as part of plain `go test`.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzReadFrame -fuzztime=10s ./internal/cluster/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeBatch -fuzztime=10s ./internal/cluster/
	$(GO) test -run=^$$ -fuzz=FuzzReadCiphertext -fuzztime=10s ./internal/rlwe/
	$(GO) test -run=^$$ -fuzz=FuzzReadLWECiphertext -fuzztime=10s ./internal/rlwe/

fmt:
	gofmt -l .
