module heap

go 1.22
