package heap

// Benchmark harness: one benchmark per table of the paper's evaluation
// (§VI), plus the ablations DESIGN.md calls out. The hardware-model numbers
// are reported as custom metrics (ms_model); the Go timings measure this
// library's functional implementation on the host CPU — the "CPU" column of
// the paper's methodology. EXPERIMENTS.md records paper-vs-measured for
// every row.

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"
	"testing"

	"heap/internal/apps"
	"heap/internal/ckks"
	"heap/internal/core"
	"heap/internal/hwsim"
	"heap/internal/ring"
	"heap/internal/rlwe"
	"heap/internal/tfhe"
)

// --- shared fixtures (built once; several benchmarks reuse them) ---

var paperCtxOnce sync.Once
var paperCtx struct {
	params *ckks.Parameters
	cl     *ckks.Client
	ev     *ckks.Evaluator
	ct     *rlwe.Ciphertext
}

// paperOps builds a functional CKKS context at the paper's §III-C parameter
// set (N=2^13, six 36-bit limbs + aux, Δ=2^35) for the Table III/IV ops.
func paperOps(b *testing.B) {
	paperCtxOnce.Do(func() {
		q := ring.GenerateNTTPrimes(36, 13, 7)
		p := ring.GenerateNTTPrimesUp(37, 13, 4)
		params := ckks.MustParameters(13, q, p, ring.DefaultSigma, 2, float64(uint64(1)<<35), 1<<12)
		kg := rlwe.NewKeyGenerator(params.Parameters, 1)
		sk := kg.GenSecretKey(rlwe.SecretTernary)
		cl := ckks.NewClient(params, sk, 2)
		keys := ckks.GenEvaluationKeySet(params, kg, sk, []int{1}, true)
		ev := ckks.NewEvaluator(params, keys, nil)
		v := make([]complex128, params.Slots)
		for i := range v {
			v[i] = complex(0.5, 0.1)
		}
		paperCtx.params, paperCtx.cl, paperCtx.ev = params, cl, ev
		paperCtx.ct = cl.Encrypt(v)
	})
	_ = b
}

// BenchmarkTable2Resources evaluates the Table II resource model.
func BenchmarkTable2Resources(b *testing.B) {
	cfg := hwsim.AlveoU280()
	p := hwsim.PaperParams()
	var r hwsim.ResourceUsage
	for i := 0; i < b.N; i++ {
		r = hwsim.ResourceModel(cfg, p)
	}
	b.ReportMetric(float64(r.DSPs), "DSPs")
	b.ReportMetric(float64(r.URAMs), "URAMs")
}

// BenchmarkTable3BasicOps times the functional CKKS/TFHE primitives at the
// paper's parameter set (the library's CPU realization of Table III) and
// attaches the hardware model's single-FPGA latency as ms_model.
func BenchmarkTable3BasicOps(b *testing.B) {
	paperOps(b)
	m := hwsim.NewModel(hwsim.AlveoU280(), hwsim.PaperParams())
	ev, ct := paperCtx.ev, paperCtx.ct

	b.Run("Add", func(b *testing.B) {
		b.ReportMetric(m.Add().Ms(), "ms_model")
		for i := 0; i < b.N; i++ {
			_ = ev.Add(ct, ct)
		}
	})
	b.Run("Mult", func(b *testing.B) {
		b.ReportMetric(m.Mult().Ms(), "ms_model")
		for i := 0; i < b.N; i++ {
			_ = ev.Mul(ct, ct)
		}
	})
	b.Run("Rescale", func(b *testing.B) {
		b.ReportMetric(m.Rescale().Ms(), "ms_model")
		for i := 0; i < b.N; i++ {
			_ = ev.Rescale(ct)
		}
	})
	b.Run("Rotate", func(b *testing.B) {
		b.ReportMetric(m.Rotate().Ms(), "ms_model")
		for i := 0; i < b.N; i++ {
			_ = ev.Rotate(ct, 1)
		}
	})
	b.Run("BlindRotate", func(b *testing.B) {
		// A single blind rotation at a reduced n_t (the paper's n_t=500 at
		// N=2^13 takes minutes per rotation on a CPU; the per-iteration cost
		// scales linearly, and ms_model carries the paper-scale figure).
		params := paperCtx.params
		kg := rlwe.NewKeyGenerator(params.Parameters, 3)
		rsk := kg.GenSecretKey(rlwe.SecretTernary)
		lweSK := kg.GenLWESecretKey(8, rlwe.SecretBinary)
		brk := tfhe.GenBlindRotateKey(kg, lweSK, rsk)
		evT := tfhe.NewEvaluator(params.Parameters, nil)
		lut := tfhe.NewLUTFromBig(params.Parameters, params.MaxLevel(), func(u int) *big.Int {
			return big.NewInt(int64(u))
		})
		s := ring.NewSampler(4)
		lwe := &rlwe.LWECiphertext{A: make([]uint64, 8), B: 3, Q: uint64(2 * params.N())}
		for i := range lwe.A {
			lwe.A[i] = s.UniformMod(lwe.Q)
		}
		b.ReportMetric(m.BlindRotate().Ms(), "ms_model")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = evT.BlindRotate(lwe, lut, brk)
		}
	})
}

// BenchmarkTable4NTT measures single-limb NTT throughput at N=2^13 — the
// library analog of Table IV (ops/s is the inverse of ns/op).
func BenchmarkTable4NTT(b *testing.B) {
	r := ring.NewRing(13, ring.GenerateNTTPrimes(36, 13, 1)[0])
	p := r.NewPoly()
	ring.NewSampler(5).UniformPoly(r, p)
	opsModel, _ := hwsim.NewModel(hwsim.AlveoU280(), hwsim.PaperParams()).NTTThroughput()
	b.ReportMetric(opsModel, "opsps_model")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.NTT(p)
	}
}

// BenchmarkTable5Bootstrapping measures the functional scheme-switching
// bootstrap (reduced ring for CPU tractability) and reports the eight-FPGA
// model's total and per-slot-mult figures for the paper-scale system.
func BenchmarkTable5Bootstrapping(b *testing.B) {
	s := hwsim.NewSystem(hwsim.AlveoU280(), hwsim.PaperParams(), 8)
	bs := s.Bootstrap(1 << 12)
	b.ReportMetric(bs.TotalMs, "ms_model")
	b.ReportMetric(s.AmortizedMultTime(1<<12, 5), "us_eq3_model")

	cfg := TestContextConfig()
	cfg.Bootstrap.NT = 24 // paper-style n_t mode
	cfg.Limbs = 3
	ctx, err := NewContext(cfg)
	if err != nil {
		b.Fatal(err)
	}
	v := make([]complex128, ctx.Params.Slots)
	ct := ctx.Client.EncryptAtLevel(v, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ctx.Boot.Bootstrap(ct)
	}
}

// BenchmarkTable6LRTraining measures one functional encrypted LR iteration
// (reduced scale) and reports the paper-scale model projection.
func BenchmarkTable6LRTraining(b *testing.B) {
	s := hwsim.NewSystem(hwsim.AlveoU280(), hwsim.PaperParams(), 8)
	b.ReportMetric(s.Time(apps.LRSchedule()), "ms_model_periter")

	q := ring.GenerateNTTPrimes(30, 7, 6)
	p := ring.GenerateNTTPrimesUp(31, 7, 2)
	params := ckks.MustParameters(7, q, p, ring.DefaultSigma, 3, float64(uint64(1)<<28), 64)
	kg := rlwe.NewKeyGenerator(params.Parameters, 6)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := ckks.NewClient(params, sk, 7)
	rot := []int{}
	for r := 1; r < 64; r <<= 1 {
		rot = append(rot, r)
	}
	keys := ckks.GenEvaluationKeySet(params, kg, sk, rot, false)
	ev := ckks.NewEvaluator(params, keys, nil)
	bc := core.DefaultConfig()
	bc.NT = 0
	bc.Workers = 4
	bt, err := core.NewBootstrapper(params, kg, sk, bc)
	if err != nil {
		b.Fatal(err)
	}
	trainer := &apps.EncryptedLR{Params: params, Client: cl, Ev: ev, Boot: bt, Gamma: 1.0}
	ds := apps.MiniDataset(64, 3, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = trainer.Train(ds, 1)
	}
}

// BenchmarkTable7ResNet reports the ResNet-20 model projection and times one
// functional encrypted convolution layer.
func BenchmarkTable7ResNet(b *testing.B) {
	s := hwsim.NewSystem(hwsim.AlveoU280(), hwsim.PaperParams(), 8)
	b.ReportMetric(s.Time(apps.ResNetSchedule())/1e3, "s_model_perinfer")

	paperOps(b)
	ev, ct := paperCtx.ev, paperCtx.ct
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 3-tap convolution + square activation, one layer.
		t0 := ev.Rescale(ev.MulByFloat(ct, 0.5, paperCtx.params.DefaultScale))
		t1 := ev.Rescale(ev.MulByFloat(ev.Rotate(ct, 1), 0.25, paperCtx.params.DefaultScale))
		conv := ev.Add(t0, t1)
		_ = ev.Mul(conv, conv)
	}
}

// BenchmarkTable8SchemeSwitchSplit measures, on this host CPU, the two
// bootstrapping algorithms Table VIII contrasts: the conventional CKKS
// pipeline (Fig. 1a) and the scheme-switching pipeline (Fig. 1b), each at
// its natural reduced parameter set. Note EXPERIMENTS.md's finding: on a
// CPU the scheme-switching bootstrap is *not* faster functionally — its
// advantage is parallel hardware plus the smaller parameter set, which the
// model captures; the paper's own Table III TFHE row (9.4 ms per blind
// rotation × n rotations) implies the same.
func BenchmarkTable8SchemeSwitchSplit(b *testing.B) {
	b.Run("ConventionalCKKS", func(b *testing.B) {
		q := append(ring.GenerateNTTPrimes(50, 9, 1), ring.GenerateNTTPrimes(44, 9, 21)...)
		p := ring.GenerateNTTPrimesUp(50, 9, 4)
		params := ckks.MustParameters(9, q, p, ring.DefaultSigma, 6, float64(q[1]), 1<<8)
		kg := rlwe.NewKeyGenerator(params.Parameters, 9)
		sk := kg.GenSecretKey(rlwe.SecretTernary)
		cl := ckks.NewClient(params, sk, 10)
		keys := ckks.GenEvaluationKeySet(params, kg, sk, ckks.BootstrapRotations(params), true)
		ev := ckks.NewEvaluator(params, keys, nil)
		bt := ckks.NewBootstrapper(params, cl.Encoder, ev, ckks.DefaultBootstrapConfig())
		v := make([]complex128, params.Slots)
		ct := cl.EncryptAtLevel(v, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = bt.Bootstrap(ct)
		}
	})
	b.Run("SchemeSwitching", func(b *testing.B) {
		cfg := TestContextConfig()
		cfg.Bootstrap.NT = 32
		cfg.Limbs = 3
		ctx, err := NewContext(cfg)
		if err != nil {
			b.Fatal(err)
		}
		v := make([]complex128, ctx.Params.Slots)
		ct := ctx.Client.EncryptAtLevel(v, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = ctx.Boot.Bootstrap(ct)
		}
	})
}

// --- ablations (DESIGN.md) ---

// BenchmarkAblationReduction is the per-prime kernel ablation behind the
// §IV-A reduction-circuit choice: for every modulus of the committed paper
// basis (seven 36-bit ciphertext primes, four 37-bit special primes) it
// times the generic two-word Barrett, the fixed-shift single-word Barrett,
// Montgomery, and Shoup fixed-operand kernels on a serially dependent chain
// so neither the compiler nor the CPU pipeline can collapse the measured
// latency. `heapbench -benchjson BENCH_kernels.json` writes the same
// measurement as a committed, benchdiff-gated JSON record.
func BenchmarkAblationReduction(b *testing.B) {
	primes := ring.GenerateNTTPrimes(36, 13, 7)
	primes = append(primes, ring.GenerateNTTPrimesUp(37, 13, 4)...)
	for pi, q := range primes {
		m := ring.NewModulus(q)
		b.Run(fmt.Sprintf("q%02d", pi), func(b *testing.B) {
			b.Run("Barrett", func(b *testing.B) {
				r := uint64(987654321)
				for i := 0; i < b.N; i++ {
					r = m.MulModBarrett(r^uint64(i), 123456789)
				}
				benchSink = r
			})
			b.Run("BarrettFixed", func(b *testing.B) {
				// r^i stays far below q²/b, so the x < q² precondition holds
				// without a canonicalizing reduction in the loop.
				r := uint64(987654321)
				for i := 0; i < b.N; i++ {
					r = m.MulModBarrettFixed(r^uint64(i), 123456789)
				}
				benchSink = r
			})
			b.Run("Montgomery", func(b *testing.B) {
				xm := m.MForm(123456789)
				r := uint64(987654321)
				for i := 0; i < b.N; i++ {
					r = m.MRed(r^uint64(i), xm)
				}
				benchSink = r
			})
			b.Run("Shoup", func(b *testing.B) {
				w := uint64(123456789)
				wS := m.ShoupPrecomp(w)
				r := uint64(987654321)
				for i := 0; i < b.N; i++ {
					r = m.MulModShoup(r^uint64(i), w, wS)
				}
				benchSink = r
			})
		})
	}
}

var benchSink uint64

// BenchmarkAblationTwiddles compares the precomputed-table NTT against the
// on-the-fly twiddle generation mode (§IV-D).
func BenchmarkAblationTwiddles(b *testing.B) {
	r := ring.NewRing(12, ring.GenerateNTTPrimes(36, 12, 1)[0])
	p := r.NewPoly()
	ring.NewSampler(11).UniformPoly(r, p)
	b.Run("Precomputed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.NTT(p)
		}
	})
	b.Run("OnTheFly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.NTTOnTheFly(p)
		}
	})
}

// BenchmarkAblationGadget sweeps the gadget decomposition number d
// (§III-C trades key size against key-switch latency).
func BenchmarkAblationGadget(b *testing.B) {
	for _, dnum := range []int{2, 3, 6} {
		b.Run(map[int]string{2: "d2", 3: "d3", 6: "d6"}[dnum], func(b *testing.B) {
			q := ring.GenerateNTTPrimes(30, 10, 6)
			p := ring.GenerateNTTPrimesUp(31, 10, (6+dnum-1)/dnum+1)
			params := rlwe.MustParameters(10, q, p, ring.DefaultSigma, dnum)
			kg := rlwe.NewKeyGenerator(params, 12)
			sk1 := kg.GenSecretKey(rlwe.SecretTernary)
			sk2 := kg.GenSecretKey(rlwe.SecretTernary)
			ksk := kg.GenKeySwitchKey(sk1, sk2)
			ks := rlwe.NewKeySwitcher(params)
			enc := rlwe.NewEncryptor(params, sk1, 13)
			ct := enc.EncryptZeroAtLevel(params.MaxLevel())
			b.ReportMetric(float64(ksk.SizeBytes()), "key_bytes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _ = ks.SwitchPoly(ct.C1, ksk)
			}
		})
	}
}

// BenchmarkAblationBRScheduling sweeps the worker count of the parallel
// blind-rotate fan-out (the §V multi-node scaling, functionally).
func BenchmarkAblationBRScheduling(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4"}[workers], func(b *testing.B) {
			cfg := TestContextConfig()
			cfg.Bootstrap.NT = 24
			cfg.Bootstrap.Workers = workers
			cfg.Limbs = 3
			ctx, err := NewContext(cfg)
			if err != nil {
				b.Fatal(err)
			}
			v := make([]complex128, ctx.Params.Slots)
			ct := ctx.Client.EncryptAtLevel(v, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ctx.Boot.Bootstrap(ct)
			}
		})
	}
}

// --- hot-kernel benchmarks (the zero-allocation steady-state datapath) ---
//
// These run the scratch-arena variants of the BlindRotate kernels at the
// paper's §III-C parameter set and report allocations, so `make bench-smoke`
// catches both throughput and allocation drift. The hard 0 allocs/op locks
// live in the AllocsPerRun tests next to each kernel.

var kernelOnce sync.Once
var kernelCtx struct {
	ks   *rlwe.KeySwitcher
	ev   *tfhe.Evaluator
	ct   *rlwe.Ciphertext
	rgsw *rlwe.RGSWCiphertext
	lut  *tfhe.LookupTable
	brk  *tfhe.BlindRotateKey
	lwe  *rlwe.LWECiphertext
}

func kernelOps(b *testing.B) {
	paperOps(b)
	kernelOnce.Do(func() {
		params := paperCtx.params
		kg := rlwe.NewKeyGenerator(params.Parameters, 3)
		rsk := kg.GenSecretKey(rlwe.SecretTernary)
		lweSK := kg.GenLWESecretKey(8, rlwe.SecretBinary)
		kernelCtx.ks = rlwe.NewKeySwitcher(params.Parameters)
		kernelCtx.ev = tfhe.NewEvaluator(params.Parameters, kernelCtx.ks)
		kernelCtx.rgsw = kg.GenRGSWConstant(1, rsk)
		kernelCtx.brk = tfhe.GenBlindRotateKey(kg, lweSK, rsk)
		kernelCtx.lut = tfhe.NewLUTFromBig(params.Parameters, params.MaxLevel(), func(u int) *big.Int {
			return big.NewInt(int64(u))
		})
		enc := rlwe.NewEncryptor(params.Parameters, rsk, 5)
		kernelCtx.ct = enc.EncryptZeroAtLevel(params.MaxLevel())
		s := ring.NewSampler(4)
		lwe := &rlwe.LWECiphertext{A: make([]uint64, 8), B: 3, Q: uint64(2 * params.N())}
		for i := range lwe.A {
			lwe.A[i] = s.UniformMod(lwe.Q)
		}
		kernelCtx.lwe = lwe
	})
}

// BenchmarkKernelExternalProduct times one steady-state external product —
// the §IV-E MAC kernel — through the scratch arena.
func BenchmarkKernelExternalProduct(b *testing.B) {
	kernelOps(b)
	sc := kernelCtx.ks.NewScratch()
	out := rlwe.NewCiphertext(paperCtx.params.Parameters, kernelCtx.ct.Level())
	kernelCtx.ks.ExternalProductInto(out, kernelCtx.ct, kernelCtx.rgsw, sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernelCtx.ks.ExternalProductInto(out, kernelCtx.ct, kernelCtx.rgsw, sc)
	}
}

// --- repacking benchmarks (the §V primary-node merge tree) ---
//
// BenchmarkRepack isolates the rlwe merge tree, BenchmarkFinish measures the
// full Algorithm-2 tail (per-accumulator NTTs → merge tree → shared trace →
// rescale) through the MergeCollector, and BenchmarkBootstrapEndToEnd runs
// the whole bootstrap. Each is parameterized by worker count; the outputs
// are bit-identical across worker counts (locked by the repack equivalence
// tests), so the sub-benchmarks measure the same computation.

const repackCount = 256

// repackWorkerCounts returns the worker counts the repack benchmarks sweep:
// the serial reference, the ISSUE's ≥4-core target, and the full machine
// when it is bigger than that. On a single-core host the w4 runs time-share
// one CPU and land at ≈ w1 — the speedup needs real cores.
func repackWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

var repackOnce sync.Once
var repackCtx struct {
	bt   *core.Bootstrapper
	ks   *rlwe.KeySwitcher
	pk   *rlwe.PackingKeys
	prep *core.PreparedBootstrap
	accs []*rlwe.Ciphertext
}

// repackOps builds a bootstrapper at the paper's ring (N=2^13, 36-bit limbs)
// plus repackCount accumulators with uniform limbs. The repack algebra is
// data-independent, so random accumulators cost exactly what BlindRotate
// outputs cost; n_t is reduced to 8 because the Finish path never touches it
// and the real n_t only slows fixture keygen.
func repackOps(b *testing.B) {
	paperOps(b)
	repackOnce.Do(func() {
		params := paperCtx.params
		kg := rlwe.NewKeyGenerator(params.Parameters, 41)
		sk := kg.GenSecretKey(rlwe.SecretTernary)
		cl := ckks.NewClient(params, sk, 42)
		cfg := core.DefaultConfig()
		cfg.NT = 8
		cfg.Workers = 1
		bt, err := core.NewBootstrapper(params, kg, sk, cfg)
		if err != nil {
			panic(err)
		}
		repackCtx.bt = bt
		repackCtx.ks = rlwe.NewKeySwitcher(params.Parameters)
		repackCtx.pk = kg.GenPackingKeys(sk)
		v := make([]complex128, params.Slots)
		repackCtx.prep = bt.PrepareSparse(cl.EncryptAtLevel(v, 1), repackCount)
		s := ring.NewSampler(43)
		repackCtx.accs = make([]*rlwe.Ciphertext, repackCount)
		for i := range repackCtx.accs {
			acc := bt.NewAccumulator()
			for l := 0; l < acc.Level(); l++ {
				s.UniformPoly(params.QBasis.Rings[l], acc.C0.Limbs[l])
				s.UniformPoly(params.QBasis.Rings[l], acc.C1.Limbs[l])
			}
			repackCtx.accs[i] = acc
		}
	})
	_ = b
}

// BenchmarkRepack times the 256→1 merge tree alone (no trace) at the paper
// ring, serial vs one worker per core. Merging preserves the level and the
// tree consumes its inputs in place, so the same slice is re-merged every
// iteration — steady-state cost, no per-iteration setup.
func BenchmarkRepack(b *testing.B) {
	repackOps(b)
	cts := make([]*rlwe.Ciphertext, repackCount)
	for i, acc := range repackCtx.accs {
		cts[i] = acc.CopyNew()
		cts[i].IsNTT = true
	}
	for _, workers := range repackWorkerCounts() {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			rp := rlwe.NewRepacker(repackCtx.ks, repackCtx.pk, workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rp.Merge(cts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFinish times steps 4–5 of Algorithm 2 (NTT all accumulators,
// merge tree, add ct′, shared trace, rescale) through the MergeCollector.
// This is the ISSUE's ≥2× target: w1 is the serial reference, wN the
// parallel path, bit-identical outputs.
func BenchmarkFinish(b *testing.B) {
	repackOps(b)
	bt := repackCtx.bt
	oldWorkers := bt.Cfg.Workers
	defer func() { bt.Cfg.Workers = oldWorkers }()
	for _, workers := range repackWorkerCounts() {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			bt.Cfg.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Finish consumes the accumulators but preserves their
				// level; resetting IsNTT restores the real workload
				// (BlindRotate emits coefficient-domain accumulators).
				for _, acc := range repackCtx.accs {
					acc.IsNTT = false
				}
				if _, err := bt.Finish(repackCtx.prep, repackCtx.accs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBootstrapEndToEnd runs the whole scheme-switching bootstrap
// (reduced ring for CPU tractability) at one vs four workers — the
// end-to-end effect of parallelizing both the blind-rotate fan-out and the
// repack that follows it.
func BenchmarkBootstrapEndToEnd(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			cfg := TestContextConfig()
			cfg.Bootstrap.NT = 24
			cfg.Bootstrap.Workers = workers
			cfg.Limbs = 3
			ctx, err := NewContext(cfg)
			if err != nil {
				b.Fatal(err)
			}
			v := make([]complex128, ctx.Params.Slots)
			ct := ctx.Client.EncryptAtLevel(v, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ctx.Boot.Bootstrap(ct)
			}
		})
	}
}

// BenchmarkBlindRotateBatch contrasts the two blind-rotation schedules over a
// 64-ciphertext batch at the paper ring: ciphertext-major (the full BRK
// streamed through cache once per ciphertext) versus the key-major batched
// engine (each key pulled once per tile of accumulators — the §V URAM
// residency schedule). The outputs are bit-identical (locked by
// TestBlindRotateBatchMatchesPerCiphertext); the delta is pure memory-system
// scheduling, so the win grows with BRK size relative to cache.
func BenchmarkBlindRotateBatch(b *testing.B) {
	kernelOps(b)
	const batch = 64
	params := paperCtx.params
	twoN := uint64(2 * params.N())
	s := ring.NewSampler(17)
	lwes := make([]*rlwe.LWECiphertext, batch)
	for j := range lwes {
		lwe := &rlwe.LWECiphertext{A: make([]uint64, 8), Q: twoN}
		for i := range lwe.A {
			lwe.A[i] = 1 + s.UniformMod(twoN-1) // dense masks: every key touched
		}
		lwe.B = s.UniformMod(twoN)
		lwes[j] = lwe
	}
	accs := make([]*rlwe.Ciphertext, batch)
	for i := range accs {
		accs[i] = rlwe.NewCiphertext(params.Parameters, kernelCtx.lut.Level)
	}
	ev := kernelCtx.ev
	b.Run("PerCiphertext", func(b *testing.B) {
		sc := ev.NewScratch()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range lwes {
				ev.BlindRotateInto(accs[j], lwes[j], kernelCtx.lut, kernelCtx.brk, sc)
			}
		}
	})
	b.Run("KeyMajorBatch", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ev.BlindRotateBatchInto(accs, lwes, kernelCtx.lut, kernelCtx.brk, tfhe.BatchOptions{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKernelBlindRotate times one steady-state blind rotation (n_t=8
// iterations; the per-iteration cost scales linearly to the paper's n_t)
// with a reused accumulator and a per-worker scratch arena.
func BenchmarkKernelBlindRotate(b *testing.B) {
	kernelOps(b)
	sc := kernelCtx.ev.NewScratch()
	acc := rlwe.NewCiphertext(paperCtx.params.Parameters, kernelCtx.lut.Level)
	kernelCtx.ev.BlindRotateInto(acc, kernelCtx.lwe, kernelCtx.lut, kernelCtx.brk, sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernelCtx.ev.BlindRotateInto(acc, kernelCtx.lwe, kernelCtx.lut, kernelCtx.brk, sc)
	}
}
