package heap

import (
	"math/cmplx"
	"testing"
)

// TestContextEndToEnd drives the public facade through the full story:
// encrypt → exhaust levels → scheme-switching bootstrap → keep computing.
func TestContextEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	ctx, err := NewContext(TestContextConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := make([]complex128, ctx.Params.Slots)
	for i := range v {
		v[i] = complex(0.55, 0)
	}
	ct := ctx.Encrypt(v)
	want := complex(0.55, 0)
	for ct.Level() > 1 {
		ct = ctx.Eval.MulRelinRescale(ct, ct)
		want *= want
	}
	ct = ctx.Bootstrap(ct)
	if ct.Level() != ctx.Boot.AppMaxLevel() {
		t.Fatalf("bootstrap level %d want %d", ct.Level(), ctx.Boot.AppMaxLevel())
	}
	ct = ctx.Eval.MulRelinRescale(ct, ct)
	want *= want
	got := ctx.Decrypt(ct)
	for i := range got {
		if e := cmplx.Abs(got[i] - want); e > 0.05 {
			t.Fatalf("slot %d: %v want %v", i, got[i], want)
		}
	}
}

func TestSystemModelFacade(t *testing.T) {
	s := NewSystemModel(8)
	b := s.Bootstrap(1 << 12)
	if b.TotalMs < 1.4 || b.TotalMs > 1.6 {
		t.Errorf("modeled bootstrap %.3f ms, paper reports 1.5 ms", b.TotalMs)
	}
}

func TestConfigValidationSurfacesErrors(t *testing.T) {
	cfg := TestContextConfig()
	cfg.Slots = cfg.Slots * 4 // exceeds N/2
	if _, err := NewContext(cfg); err == nil {
		t.Error("expected an error for slots > N/2")
	}
}
