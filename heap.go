// Package heap is a from-scratch Go reproduction of "HEAP: A Fully
// Homomorphic Encryption Accelerator with Parallelized Bootstrapping"
// (Agrawal, Chandrakasan, Joshi — ISCA 2024).
//
// It bundles a complete CKKS implementation (including the conventional
// bootstrapping baseline), the TFHE operations HEAP relies on (BlindRotate,
// ExternalProduct, programmable bootstrapping), the paper's scheme-switching
// CKKS bootstrapper with parallel blind rotation, and a calibrated
// cycle-level model of the HEAP FPGA system that regenerates every table in
// the paper's evaluation.
//
// This facade re-exports the high-level entry points; the implementation
// lives in internal/ (ring → rns → rlwe → ckks/tfhe → core → apps, plus the
// ciphertext-free hwsim model). A typical session:
//
//	ctx, _ := heap.NewContext(heap.TestContextConfig())
//	ct := ctx.Encrypt(values)
//	ct = ctx.Eval.MulRelinRescale(ct, ct)    // …until levels run out…
//	ct = ctx.Bootstrap(ct)                   // scheme-switching refresh
//	got := ctx.Decrypt(ct)
package heap

import (
	"heap/internal/ckks"
	"heap/internal/core"
	"heap/internal/hwsim"
	"heap/internal/ring"
	"heap/internal/rlwe"
)

// Re-exported types: the public API surface.
type (
	// Ciphertext is an RLWE/CKKS ciphertext.
	Ciphertext = rlwe.Ciphertext
	// Parameters is a CKKS parameter set.
	Parameters = ckks.Parameters
	// Evaluator performs homomorphic CKKS operations.
	Evaluator = ckks.Evaluator
	// Bootstrapper is the scheme-switching bootstrapper (the paper's core).
	Bootstrapper = core.Bootstrapper
	// BootstrapConfig tunes the scheme-switching bootstrapper.
	BootstrapConfig = core.Config
	// SystemModel is the multi-FPGA hardware model.
	SystemModel = hwsim.SystemModel
)

// ContextConfig describes a full HEAP context.
type ContextConfig struct {
	LogN      int
	LimbBits  int
	Limbs     int // application limbs + q0 + auxiliary prime
	PLimbs    int
	Dnum      int
	LogScale  int
	Slots     int
	Seed      uint64
	Bootstrap core.Config
}

// TestContextConfig is a laptop-scale configuration (N=128) exercising the
// full pipeline in seconds. It uses the exact bootstrap mode (NT = 0): at
// miniature ring degrees the n_t-mode rounding error ε·q0/(2N·Δ) is large
// relative to the scale, whereas the paper-scale parameters enjoy 2^13 of
// head-room (see internal/core.ExpectedSlotErrorBound and DESIGN.md).
func TestContextConfig() ContextConfig {
	bc := core.DefaultConfig()
	bc.NT = 0
	bc.Workers = 4
	return ContextConfig{
		LogN: 7, LimbBits: 30, Limbs: 4, PLimbs: 2, Dnum: 2,
		LogScale: 28, Slots: 64, Seed: 1, Bootstrap: bc,
	}
}

// PaperContextConfig is the paper's §III-C parameter set (N=2^13, six 36-bit
// limbs + auxiliary p, n_t=500). Functional execution at this scale is CPU
// heavy; it is used by the benchmarks.
func PaperContextConfig() ContextConfig {
	return ContextConfig{
		LogN: 13, LimbBits: 36, Limbs: 7, PLimbs: 4, Dnum: 2,
		LogScale: 35, Slots: 1 << 12, Seed: 1, Bootstrap: core.DefaultConfig(),
	}
}

// Context owns the key material and engines for one party.
type Context struct {
	Params *ckks.Parameters
	Client *ckks.Client
	Eval   *ckks.Evaluator
	Boot   *core.Bootstrapper
	SK     *rlwe.SecretKey
}

// NewContext generates keys and engines from a config.
func NewContext(cfg ContextConfig) (*Context, error) {
	q := ring.GenerateNTTPrimes(cfg.LimbBits, cfg.LogN, cfg.Limbs)
	p := ring.GenerateNTTPrimesUp(cfg.LimbBits+1, cfg.LogN, cfg.PLimbs)
	params, err := ckks.NewParameters(cfg.LogN, q, p, ring.DefaultSigma, cfg.Dnum,
		float64(uint64(1)<<cfg.LogScale), cfg.Slots)
	if err != nil {
		return nil, err
	}
	kg := rlwe.NewKeyGenerator(params.Parameters, cfg.Seed)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	client := ckks.NewClient(params, sk, cfg.Seed+1)
	boot, err := core.NewBootstrapper(params, kg, sk, cfg.Bootstrap)
	if err != nil {
		return nil, err
	}
	rotations := make([]int, 0, 2*cfg.LogN)
	for r := 1; r < cfg.Slots; r <<= 1 {
		rotations = append(rotations, r, -r)
	}
	keys := ckks.GenEvaluationKeySet(params, kg, sk, rotations, true)
	ev := ckks.NewEvaluator(params, keys, nil)
	return &Context{Params: params, Client: client, Eval: ev, Boot: boot, SK: sk}, nil
}

// Encrypt encrypts a complex vector at the highest application level.
func (c *Context) Encrypt(values []complex128) *Ciphertext {
	return c.Client.EncryptAtLevel(values, c.Boot.AppMaxLevel())
}

// Decrypt decodes a ciphertext's slot values.
func (c *Context) Decrypt(ct *Ciphertext) []complex128 { return c.Client.Decrypt(ct) }

// Bootstrap refreshes a level-1 ciphertext with the scheme-switching
// bootstrapper; higher-level inputs are dropped to level 1 first.
func (c *Context) Bootstrap(ct *Ciphertext) *Ciphertext {
	if ct.Level() > 1 {
		ct = c.Eval.DropLevels(ct, ct.Level()-1)
	}
	return c.Boot.Bootstrap(ct)
}

// NewSystemModel returns the multi-FPGA hardware model at the paper's
// configuration.
func NewSystemModel(nFPGAs int) *SystemModel {
	return hwsim.NewSystem(hwsim.AlveoU280(), hwsim.PaperParams(), nFPGAs)
}
