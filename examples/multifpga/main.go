// Multi-node parallel bootstrapping walk-through (§V, Figure 4).
//
// Functionally, the worker pool of the scheme-switching bootstrapper plays
// the role of the eight FPGAs: the blind rotations of distinct LWE
// ciphertexts have no data dependencies, so they fan out across compute
// nodes and stream back to the primary for repacking. This example runs the
// same bootstrap with 1, 2, 4 and 8 workers (identical results, by
// determinism), prints the observability snapshot of a fault-injected
// cluster run, and prints the hardware model's timeline for the real
// eight-FPGA system.
package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"time"

	"heap"
	"heap/internal/cluster"
	"heap/internal/hwsim"
	"heap/internal/obs"
)

func main() {
	if err := run(heap.TestContextConfig(), []int{1, 2, 4, 8}); err != nil {
		panic(err)
	}
}

// run executes the walk-through at the given parameter scale and worker
// sweep; the smoke test drives it with a reduced ring and a short sweep.
func run(cfg heap.ContextConfig, workerCounts []int) error {
	for _, workers := range workerCounts {
		c := cfg
		c.Bootstrap.Workers = workers
		ctx, err := heap.NewContext(c)
		if err != nil {
			return err
		}
		v := make([]complex128, ctx.Params.Slots)
		for i := range v {
			v[i] = complex(0.4, 0)
		}
		ct := ctx.Client.EncryptAtLevel(v, 1) // exhausted ciphertext
		start := time.Now()
		out := ctx.Boot.Bootstrap(ct)
		fmt.Printf("workers=%d: bootstrap in %8v, output level %d, slot0 = %.3f\n",
			workers, time.Since(start).Round(time.Millisecond), out.Level(),
			real(ctx.Decrypt(out)[0]))
	}

	// The same fan-out over real byte streams: a primary and two secondary
	// nodes exchanging serialized ciphertexts (internal/cluster, Figure 4).
	mk := func() (*heap.Context, error) { return heap.NewContext(cfg) }
	primary, err := mk()
	if err != nil {
		return err
	}
	sec1, err := mk()
	if err != nil {
		return err
	}
	sec2, err := mk()
	if err != nil {
		return err
	}
	c1p, c1s := net.Pipe()
	c2p, c2s := net.Pipe()
	go func() { _ = (&cluster.Secondary{Boot: sec1.Boot}).Serve(c1s) }()
	go func() { _ = (&cluster.Secondary{Boot: sec2.Boot}).Serve(c2s) }()
	v2 := make([]complex128, primary.Params.Slots)
	for i := range v2 {
		v2[i] = complex(0.4, 0)
	}
	ct2 := primary.Client.EncryptAtLevel(v2, 1)
	start := time.Now()
	out2, err := (&cluster.Primary{Boot: primary.Boot}).Bootstrap(ct2, []io.ReadWriter{c1p, c2p})
	if err != nil {
		return err
	}
	_ = cluster.Shutdown(c1p)
	_ = cluster.Shutdown(c2p)
	fmt.Printf("\ndistributed (1 primary + 2 secondaries over byte streams): %v, slot0 = %.3f\n",
		time.Since(start).Round(time.Millisecond), real(primary.Decrypt(out2)[0]))

	// Fault tolerance: the same bootstrap with one secondary's link cut
	// mid-stream (FaultConn injects a deterministic mid-stream disconnect).
	// The primary detects the partial accumulator stream via the framed,
	// CRC-checked wire protocol, reassigns the dead node's unfinished LWE
	// indices to the healthy secondary and its own local compute, and the
	// result is still bit-identical to the local bootstrap. The observability
	// layer watches this run: the pipeline stages account the wall time, the
	// shard lanes show where the rotations and network waits went (the
	// software rendering of the paper's Fig. 4 schedule).
	d1p, d1s := net.Pipe()
	d2p, d2s := net.Pipe()
	go func() { _ = (&cluster.Secondary{Boot: sec1.Boot}).Serve(d1s) }()
	go func() { _ = (&cluster.Secondary{Boot: sec2.Boot}).Serve(d2s) }()
	flaky := cluster.NewFaultConn(d1p, cluster.FaultPlan{Seed: 1, CutReadAfter: 8 << 10})
	nodes := []*cluster.Node{
		{Conn: flaky, Name: "flaky-fpga"},
		{Conn: d2p, Name: "healthy-fpga"},
	}
	ct3 := primary.Client.EncryptAtLevel(v2, 1)
	met := obs.NewMetrics()
	primary.Boot.SetRecorder(met)
	start = time.Now()
	out3, stats, err := (&cluster.Primary{Boot: primary.Boot}).BootstrapCluster(
		context.Background(), ct3, nodes, cluster.DefaultOptions())
	primary.Boot.SetRecorder(nil)
	if err != nil {
		return err
	}
	_ = cluster.Shutdown(d2p)
	fmt.Printf("\nchaos run (one link cut mid-stream): %v, slot0 = %.3f\n%s",
		time.Since(start).Round(time.Millisecond), real(primary.Decrypt(out3)[0]), stats)
	fmt.Printf("\nobservability snapshot of the chaos run (expvar-style):\n%s", met.JSON())
	fmt.Printf("pipeline stages account for %.1f ms of wall time\n", met.PipelineTotalMs())

	fmt.Println("\nHardware model (Alveo U280 nodes, 100G CMAC, fully packed n=4096):")
	fmt.Printf("%6s %12s %12s %12s %14s\n", "FPGAs", "step3 (ms)", "comm (ms)", "total (ms)", "vs 1 FPGA")
	base := hwsim.NewSystem(hwsim.AlveoU280(), hwsim.PaperParams(), 1).Bootstrap(1 << 12).TotalMs
	for _, n := range []int{1, 2, 4, 8} {
		s := hwsim.NewSystem(hwsim.AlveoU280(), hwsim.PaperParams(), n)
		b := s.Bootstrap(1 << 12)
		fmt.Printf("%6d %12.4f %12.4f %12.4f %13.2f×\n", n, b.Step3Ms, b.CommMs, b.TotalMs, base/b.TotalMs)
	}
	fmt.Println("\nFAB's serial CKKS bootstrap gains only ~20% from 8 FPGAs (§I);")
	fmt.Println("the scheme-switched BlindRotate fan-out above scales near-linearly until the CMAC link binds.")
	return nil
}
