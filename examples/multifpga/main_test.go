package main

import (
	"testing"

	"heap"
)

// TestMultiFPGASmoke executes the whole walk-through — worker sweep,
// distributed bootstrap over byte pipes, fault-injected chaos run with the
// observability snapshot, hardware-model table — at a reduced ring (N=64)
// and a short worker sweep, proving the example runs to completion.
func TestMultiFPGASmoke(t *testing.T) {
	cfg := heap.TestContextConfig()
	cfg.LogN = 6
	cfg.Slots = 32
	cfg.Bootstrap.Workers = 2
	if err := run(cfg, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
}
