// Encrypted CNN building block + the ResNet-20 projection (§VI-F.2).
//
// The functional half runs a real homomorphic convolution + square
// activation on an encrypted 16×4 feature map (the multiplexed-convolution
// pattern of Lee et al. [39]: rotations + plaintext weight multiplications),
// refreshed by the scheme-switching bootstrap. The second half projects the
// full ResNet-20 schedule through the hardware model, reproducing Table VII.
package main

import (
	"fmt"
	"math/cmplx"

	"heap"
	"heap/internal/apps"
	"heap/internal/hwsim"
)

func main() {
	ctx, err := heap.NewContext(heap.TestContextConfig())
	if err != nil {
		panic(err)
	}
	slots := ctx.Params.Slots // a 16×4 feature map
	img := make([]complex128, slots)
	for i := range img {
		img[i] = complex(0.3*float64(i%16)/16, 0)
	}
	ct := ctx.Encrypt(img)

	// 1-D convolution with kernel [w-1, w0, w1] via rotations + constant
	// multiplications, then a square activation — one homomorphic CNN layer.
	kernel := map[int]float64{-1: 0.25, 0: 0.5, 1: 0.25}
	var conv *heap.Ciphertext
	for off, w := range kernel {
		t := ctx.Eval.Rotate(ct, off)
		t = ctx.Eval.Rescale(ctx.Eval.MulByFloat(t, w, ctx.Params.DefaultScale))
		if conv == nil {
			conv = t
		} else {
			conv = ctx.Eval.Add(conv, t)
		}
	}
	act := ctx.Eval.MulRelinRescale(conv, conv) // square activation

	// Reference computation.
	ref := make([]complex128, slots)
	for i := range ref {
		var acc complex128
		for off, w := range kernel {
			ref[i] += img[(i+off+slots)%slots] * complex(w, 0)
		}
		_ = acc
	}
	for i := range ref {
		ref[i] *= ref[i]
	}
	got := ctx.Decrypt(act)
	worst := 0.0
	for i := range got {
		if e := cmplx.Abs(got[i] - ref[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("encrypted conv+square layer: max error %.2e at level %d\n", worst, act.Level())

	// Refresh with the scheme-switching bootstrap, as the full network does
	// after each activation block.
	refreshed := ctx.Bootstrap(act)
	fmt.Printf("refreshed to level %d for the next layer\n", refreshed.Level())

	// Full-scale Table VII projection.
	s := hwsim.NewSystem(hwsim.AlveoU280(), hwsim.PaperParams(), 8)
	sched := apps.ResNetSchedule()
	sec := s.Time(sched) / 1e3
	_, bootFrac := s.ComputeToBootRatio(sched)
	fmt.Printf("\nHEAP model, ResNet-20 at paper scale: %.3f s/inference (bootstrap %.0f%%)\n", sec, 100*bootFrac)
	for _, b := range hwsim.TableVIIBaselines() {
		fmt.Printf("  vs %-6s %8.3f s → %7.2f×\n", b.Name, b.TimeSec, b.TimeSec/sec)
	}
}
