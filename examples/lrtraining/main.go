// Encrypted logistic-regression training (the paper's §VI-F.1 workload,
// scaled to laptop parameters): feature columns packed in CKKS slots,
// encrypted weights, one scheme-switching bootstrap of every weight
// ciphertext per iteration — exactly the HELR protocol the paper benchmarks
// — followed by the Table VI cost-model projection at full scale.
package main

import (
	"fmt"
	"time"

	"heap/internal/apps"
	"heap/internal/ckks"
	"heap/internal/core"
	"heap/internal/hwsim"
	"heap/internal/ring"
	"heap/internal/rlwe"
)

func main() {
	const (
		logN  = 7
		slots = 64
		feats = 3
		iters = 2
	)
	q := ring.GenerateNTTPrimes(30, logN, 6)
	p := ring.GenerateNTTPrimesUp(31, logN, 2)
	params := ckks.MustParameters(logN, q, p, ring.DefaultSigma, 3, float64(uint64(1)<<28), slots)
	kg := rlwe.NewKeyGenerator(params.Parameters, 7)
	sk := kg.GenSecretKey(rlwe.SecretTernary)
	cl := ckks.NewClient(params, sk, 8)

	rotations := []int{}
	for r := 1; r < slots; r <<= 1 {
		rotations = append(rotations, r)
	}
	keys := ckks.GenEvaluationKeySet(params, kg, sk, rotations, false)
	ev := ckks.NewEvaluator(params, keys, nil)

	// Exact bootstrap mode (NT = 0): at laptop ring degrees the n_t-mode
	// rounding error would destabilize the unbounded linear sigmoid.
	cfg := core.DefaultConfig()
	cfg.NT = 0
	cfg.Workers = 4
	boot, err := core.NewBootstrapper(params, kg, sk, cfg)
	if err != nil {
		panic(err)
	}

	ds := apps.MiniDataset(slots, feats, 9)
	trainer := &apps.EncryptedLR{Params: params, Client: cl, Ev: ev, Boot: boot, Gamma: 1.0}

	start := time.Now()
	w := trainer.Train(ds, iters)
	elapsed := time.Since(start)

	wPlain := apps.TrainLogisticPlain(ds, iters, 1.0, true)
	fmt.Printf("encrypted training: %d iterations over %d samples × %d features in %v\n",
		iters, ds.Len(), feats, elapsed)
	fmt.Printf("encrypted weights:  %+.4f\n", w)
	fmt.Printf("plaintext weights:  %+.4f\n", wPlain)
	fmt.Printf("encrypted accuracy: %.3f (plaintext %.3f)\n",
		apps.Accuracy(w, ds), apps.Accuracy(wPlain, ds))

	// Full-scale projection (Table VI).
	s := hwsim.NewSystem(hwsim.AlveoU280(), hwsim.PaperParams(), 8)
	sched := apps.LRSchedule()
	_, bootFrac := s.ComputeToBootRatio(sched)
	fmt.Printf("\nHEAP model, paper scale: %.4f s/iteration (bootstrap %.0f%% of the time; FAB spent ~70%%)\n",
		s.Time(sched)/1e3, 100*bootFrac)
}
