package main

import "heap"

// smokeConfig shrinks the walk-through to a N=64 ring with two workers: the
// same pipeline end to end, but fast enough for the example smoke tests.
func smokeConfig() heap.ContextConfig {
	cfg := heap.TestContextConfig()
	cfg.LogN = 6
	cfg.Slots = 32
	cfg.Bootstrap.Workers = 2
	return cfg
}
