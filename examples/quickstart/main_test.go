package main

import "testing"

// TestQuickstartSmoke executes the full walk-through at a reduced ring
// (N=64) so the example is proven runnable by `go test ./examples/...`
// without the multi-second cost of the readme-scale parameters.
func TestQuickstartSmoke(t *testing.T) {
	if err := run(smokeConfig()); err != nil {
		t.Fatal(err)
	}
}
