// Quickstart: encrypt a vector, compute until the ciphertext runs out of
// levels, refresh it with HEAP's scheme-switching bootstrap (Algorithm 2),
// and keep computing — the end-to-end story of the paper in ~40 lines.
package main

import (
	"fmt"
	"math/cmplx"

	"heap"
)

func main() {
	if err := run(heap.TestContextConfig()); err != nil {
		panic(err)
	}
}

// run executes the walk-through at the given parameter scale; the smoke test
// drives it with a reduced ring so it finishes in well under a second.
func run(cfg heap.ContextConfig) error {
	ctx, err := heap.NewContext(cfg)
	if err != nil {
		return err
	}
	slots := ctx.Params.Slots
	values := make([]complex128, slots)
	for i := range values {
		values[i] = complex(0.6, 0)
	}

	ct := ctx.Encrypt(values)
	fmt.Printf("fresh ciphertext: level %d (top limb reserved as the auxiliary prime p)\n", ct.Level())

	// Square until the multiplicative budget is exhausted.
	want := complex(0.6, 0)
	for ct.Level() > 1 {
		ct = ctx.Eval.MulRelinRescale(ct, ct)
		want *= want
		fmt.Printf("squared: level %d\n", ct.Level())
	}

	// Scheme-switching bootstrap: Extract → parallel BlindRotate → repack.
	ct = ctx.Bootstrap(ct)
	fmt.Printf("bootstrapped: level %d regained\n", ct.Level())

	// And keep going.
	ct = ctx.Eval.MulRelinRescale(ct, ct)
	want *= want

	got := ctx.Decrypt(ct)
	worst := 0.0
	for i := range got {
		if e := cmplx.Abs(got[i] - want); e > worst {
			worst = e
		}
	}
	fmt.Printf("expected %.4f, decrypted slot 0 = %.4f (max error %.4f)\n",
		real(want), real(got[0]), worst)
	if worst > 0.1 {
		return fmt.Errorf("bootstrap pipeline error %.4f out of tolerance", worst)
	}
	fmt.Println("OK")
	return nil
}
